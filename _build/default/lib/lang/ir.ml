(* Normalized intermediate representation of a petit program, the input to
   dependence analysis.

   Every array access is flattened into an [access] record carrying:
   - its subscripts as affine functions of the enclosing loop variables,
     symbolic constants, and opaque terms (non-affine subexpressions);
   - its loop nest (bounds affine over outer loop variables, with max/min
     lower/upper bound lists);
   - tree coordinates used to decide execution order. *)

type varref =
  | Loop of int (* de Bruijn-style index into the access's nest, 0 = outermost *)
  | Symc of string (* symbolic constant *)
  | Opq of int (* opaque (non-affine) term, by id *)

let compare_varref a b =
  match a, b with
  | Loop i, Loop j -> compare i j
  | Loop _, _ -> -1
  | _, Loop _ -> 1
  | Symc s, Symc t -> compare s t
  | Symc _, _ -> -1
  | _, Symc _ -> 1
  | Opq i, Opq j -> compare i j

(* Affine form: constant + sum of coeff * varref, terms sorted by varref
   with no zero coefficients. *)
type affine = { const : int; terms : (varref * int) list }

let aff_const c = { const = c; terms = [] }
let aff_var v = { const = 0; terms = [ (v, 1) ] }

let aff_norm terms =
  List.filter (fun (_, c) -> c <> 0) terms
  |> List.sort (fun (a, _) (b, _) -> compare_varref a b)

let aff_add a b =
  let rec merge xs ys =
    match xs, ys with
    | [], l | l, [] -> l
    | (vx, cx) :: xs', (vy, cy) :: ys' ->
      let cmp = compare_varref vx vy in
      if cmp < 0 then (vx, cx) :: merge xs' ys
      else if cmp > 0 then (vy, cy) :: merge xs ys'
      else begin
        let c = cx + cy in
        if c = 0 then merge xs' ys' else (vx, c) :: merge xs' ys'
      end
  in
  { const = a.const + b.const; terms = merge a.terms b.terms }

let aff_scale k a =
  if k = 0 then aff_const 0
  else { const = k * a.const; terms = List.map (fun (v, c) -> (v, k * c)) a.terms }

let aff_neg a = aff_scale (-1) a
let aff_sub a b = aff_add a (aff_neg b)
let aff_is_const a = a.terms = []

let aff_coeff a v =
  match List.assoc_opt v a.terms with Some c -> c | None -> 0

let aff_vars a = List.map fst a.terms

let aff_compare a b =
  let c = compare a.const b.const in
  if c <> 0 then c
  else List.compare (fun (v1, c1) (v2, c2) ->
      let c = compare_varref v1 v2 in
      if c <> 0 then c else compare c1 c2)
      a.terms b.terms

let aff_equal a b = aff_compare a b = 0

(* Shift loop indices by [d] (used when relating an inner affine expression
   to an outer nest, or vice versa). *)
let aff_shift_loops d a =
  {
    a with
    terms =
      aff_norm
        (List.map
           (fun (v, c) -> match v with Loop i -> (Loop (i + d), c) | _ -> (v, c))
           a.terms);
  }

(* ------------------------------------------------------------------ *)
(* Structures                                                          *)
(* ------------------------------------------------------------------ *)

(* An opaque term: a non-affine subexpression (index-array read, product of
   variables, ...), kept for the section-5 symbolic analysis.  The [repr]
   is the original syntax; [args] are the affine arguments when the term is
   an index-array read with affine subscripts. *)
type opaque = {
  opq_id : int;
  repr : Ast.expr;
  base : string option; (* array name when the term is an array read *)
  args : affine list; (* affine arguments, over the same nest *)
}

type bound = affine list
(* lower bound: max of the list; upper bound: min of the list *)

type loop = {
  lvar : string;
  lo : bound; (* affine over Loop indices 0..depth-1 of the enclosing nest *)
  hi : bound;
  step : int;
      (* The IR loop counter is normalized: it counts 0,1,2,... in execution
         order regardless of the surface step.  For [step = 1] the counter
         IS the surface variable and [lo]/[hi] bound it directly.  For
         [step <> 1] (single bound arms) the surface value is
         [lo + step*counter], and the counter satisfies [counter >= 0] and
         [step*counter <= hi - lo] (sign-adjusted for negative steps). *)
}

type acc_kind = Read | Write

type access = {
  acc_id : int;
  stmt_id : int;
  label : string;
  array : string;
  kind : acc_kind;
  subs : affine list;
  loops : loop list; (* outermost first; length = nest depth of the access *)
  loop_nodes : int list; (* unique ids of the enclosing loop AST nodes *)
  path : int list; (* sibling-index coordinates for textual order *)
  opaques : opaque list; (* opaque terms referenced by subs/bounds *)
}

(* Condition over symbolic constants from "assume" declarations. *)
type sym_cond = {
  sc_left : affine;
  sc_op : Ast.relop;
  sc_right : affine;
}

(* IR statement tree, used by the interpreter and the driver. *)
type istmt =
  | IFor of {
      node_id : int;
      var : string;
      lo : Ast.expr;
      hi : Ast.expr;
      step : int;
      body : istmt list;
    }
  | IAssign of {
      stmt_id : int;
      label : string;
      write : access;
      reads : access list; (* in evaluation order *)
      lhs : string * Ast.expr list;
      rhs : Ast.expr;
    }

type program = {
  source : Ast.program;
  symbolics : string list;
  arrays : (string * (affine * affine) list) list; (* declared ranges *)
  assumes : sym_cond list;
  accesses : access array; (* indexed by acc_id *)
  stmts : istmt list;
}

let access_count p = Array.length p.accesses
let access p id = p.accesses.(id)

let writes p =
  Array.to_list p.accesses |> List.filter (fun a -> a.kind = Write)

let reads p =
  Array.to_list p.accesses |> List.filter (fun a -> a.kind = Read)

let depth a = List.length a.loops

(* Number of loops common to two accesses (shared ancestor loop nodes). *)
let common_loops a b =
  let rec go xs ys n =
    match xs, ys with
    | x :: xs', y :: ys' when x = y -> go xs' ys' (n + 1)
    | _ -> n
  in
  go a.loop_nodes b.loop_nodes 0

(* Is [a] textually before [b] (at the point where their nests diverge)?
   Reads of a statement precede its write. *)
let textually_before a b =
  let rec cmp xs ys =
    match xs, ys with
    | [], [] -> 0
    | [], _ -> -1 (* outer statement comes before its successors? compare
                     handled by path construction: equal-prefix means same
                     statement chain *)
    | _, [] -> 1
    | x :: xs', y :: ys' -> if x <> y then compare x y else cmp xs' ys'
  in
  let c = cmp a.path b.path in
  if c <> 0 then c < 0
  else if a.kind <> b.kind then a.kind = Read (* same statement: reads first *)
  else a.acc_id < b.acc_id

let pp_varref fmt = function
  | Loop i -> Format.fprintf fmt "L%d" (i + 1)
  | Symc s -> Format.pp_print_string fmt s
  | Opq i -> Format.fprintf fmt "#%d" i

let pp_affine fmt a =
  if a.terms = [] then Format.pp_print_int fmt a.const
  else begin
    List.iteri
      (fun i (v, c) ->
        if i = 0 then
          if c = 1 then pp_varref fmt v
          else if c = -1 then Format.fprintf fmt "-%a" pp_varref v
          else Format.fprintf fmt "%d%a" c pp_varref v
        else begin
          Format.fprintf fmt " %s " (if c >= 0 then "+" else "-");
          let ac = abs c in
          if ac = 1 then pp_varref fmt v
          else Format.fprintf fmt "%d%a" ac pp_varref v
        end)
      a.terms;
    if a.const > 0 then Format.fprintf fmt " + %d" a.const
    else if a.const < 0 then Format.fprintf fmt " - %d" (-a.const)
  end

let access_to_string a =
  Format.asprintf "%s: %s(%s)" a.label a.array
    (String.concat ","
       (List.map (fun s -> Format.asprintf "%a" pp_affine s) a.subs))
