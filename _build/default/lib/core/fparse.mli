(** A small textual front end for Presburger formulas (the omega_calc
    input language):

    {v
     formula := "forall" ids ":" formula
              | "exists" ids ":" formula
              | disj [ "=>" formula ]
     disj    := conj { "or" conj }
     conj    := chained comparisons separated by "and"
    v}

    e.g. ["forall x: 0 <= x and x <= 10 => exists y: x = 2*y or x = 2*y + 1"]. *)

open Omega

exception Error of string

val formula_of_string : string -> Presburger.t
(** @raise Error on malformed input. *)

val problem_of_string : string -> Problem.t * (string * Var.t) list
(** A bare conjunction as a problem, with the variable bindings created
    for its names. *)
