(** Building Omega problems from IR accesses.

    An {!inst} is an instantiation of an access: fresh integer variables
    for its loop counters (the iteration vector), plus variables for the
    value and arguments of each opaque (non-affine) term it mentions.
    Opaque value variables are the "different symbolic variable for each
    appearance" of section 5. *)

open Omega

type t = {
  prog : Ir.program;
  syms : (string * Var.t) list;  (** symbolic constants *)
  ranges : (string * (Linexpr.t * Linexpr.t) list) list;
      (** declared array ranges over the symbolic constants *)
}

type inst = {
  access : Ir.access;
  tag : string;  (** prefix of the generated variable names: i, j, k *)
  ivars : Var.t array;  (** iteration variables, outermost first *)
  opq_vals : (int * Var.t) list;  (** opaque id -> value variable *)
  opq_args : (int * Var.t list) list;  (** opaque id -> argument variables *)
}

val create : Ir.program -> t

val sym_var : t -> string -> Var.t
(** @raise Invalid_argument on an undeclared symbolic constant. *)

val affine_syms : t -> Ir.affine -> Linexpr.t
(** Translation of an affine form over symbolic constants only. *)

val instantiate : t -> Ir.access -> tag:string -> inst

val affine : t -> inst -> Ir.affine -> Linexpr.t
(** Translation of an affine form over the instance's variables. *)

val domain : ?in_bounds:bool -> t -> inst -> Constr.t list
(** [i in \[A\]]: loop bounds of the nest, defining constraints of opaque
    arguments, and (with [in_bounds]) in-bounds assertions for subscripts
    and index-array values/arguments. *)

val subs_equal : t -> inst -> inst -> Constr.t list
(** The two instances touch the same array element. *)

val assumes : t -> Constr.t list
(** User assumptions, over the symbolic constants. *)

val order_before : t -> inst -> inst -> (int * Constr.t list) list
(** [A(i) << B(j)] as a disjunction, one conjunction per carried level
    (1-based); level 0 is the loop-independent case, present only when
    the first access is textually before the second. *)

val order_before_formula : t -> inst -> inst -> Presburger.t

val inst_vars : inst -> Var.t list
(** All variables of an instantiation, for quantification. *)

val sym_vars : t -> Var.t list
