(** Induction-variable recognition for scalar accumulators (section 5,
    Example 11 / loop s141 of the vectorizing-compiler study).

    A scalar (zero-dimensional array) written only by [x := x + e] with
    [e >= 1] provable under the write's loop bounds and assumptions is a
    strictly increasing accumulator; feeding that fact to the symbolic
    dependence machinery (as {!Symbolic.array_property.Accumulator})
    eliminates the loop-carried dependences on arrays it subscripts. *)

type accumulator = {
  scalar : string;
  increment : Ir.access;  (** the write access of the [x := x + e] statement *)
}

val split_increment : string -> Ast.expr -> Ast.expr option
(** [rhs] as [x + e]: exactly one positive top-level additive occurrence
    of the scalar; returns [e]. *)

val increment_positive : Depctx.t -> Ir.access -> Ast.expr -> bool
(** Is the increment provably [>= 1] whenever the write executes? *)

val detect : Depctx.t -> accumulator list
(** All strictly increasing accumulators of the program. *)
