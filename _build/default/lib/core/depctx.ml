(* Building Omega problems from IR accesses.

   An [inst] is an instantiation of an access: fresh integer variables for
   its loop counters (the iteration vector), plus variables for the value
   and arguments of each opaque (non-affine) term it mentions.  Opaque
   value variables are the "different symbolic variable for each
   appearance" of section 5. *)

open Omega

type t = {
  prog : Ir.program;
  syms : (string * Var.t) list;
  (* declared array ranges, translated over symbolic constants *)
  ranges : (string * (Linexpr.t * Linexpr.t) list) list;
}

type inst = {
  access : Ir.access;
  tag : string; (* used in variable names, e.g. "i", "j", "k" *)
  ivars : Var.t array;
  opq_vals : (int * Var.t) list; (* opaque id -> value variable *)
  opq_args : (int * Var.t list) list; (* opaque id -> argument variables *)
}

let sym_var t name =
  match List.assoc_opt name t.syms with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Depctx.sym_var: unknown symbolic %s" name)

(* Affine over syms only (array ranges, assumes). *)
let affine_syms t (a : Ir.affine) : Linexpr.t =
  List.fold_left
    (fun e (v, c) ->
      match v with
      | Ir.Symc s -> Linexpr.add_term e (Zint.of_int c) (sym_var t s)
      | Ir.Loop _ | Ir.Opq _ ->
        invalid_arg "Depctx.affine_syms: non-symbolic term")
    (Linexpr.of_int a.Ir.const)
    a.Ir.terms

let create (prog : Ir.program) : t =
  let syms =
    List.map (fun s -> (s, Var.fresh ~kind:Var.Sym s)) prog.Ir.symbolics
  in
  let t0 = { prog; syms; ranges = [] } in
  let ranges =
    List.map
      (fun (name, ranges) ->
        (name, List.map (fun (lo, hi) -> (affine_syms t0 lo, affine_syms t0 hi)) ranges))
      prog.Ir.arrays
  in
  { t0 with ranges }

let instantiate t (access : Ir.access) ~tag : inst =
  ignore t;
  let d = Ir.depth access in
  let ivars =
    Array.init d (fun i -> Var.fresh (Printf.sprintf "%s%d" tag (i + 1)))
  in
  let opq_vals =
    List.map
      (fun (o : Ir.opaque) ->
        (o.Ir.opq_id, Var.fresh ~kind:Var.Sym (Printf.sprintf "%s_val%d" tag o.Ir.opq_id)))
      access.Ir.opaques
  in
  let opq_args =
    List.map
      (fun (o : Ir.opaque) ->
        ( o.Ir.opq_id,
          List.mapi
            (fun k _ ->
              Var.fresh ~kind:Var.Sym (Printf.sprintf "%s_arg%d_%d" tag o.Ir.opq_id k))
            o.Ir.args ))
      access.Ir.opaques
  in
  { access; tag; ivars; opq_vals; opq_args }

(* Affine over an instantiation's variables. *)
let affine t (inst : inst) (a : Ir.affine) : Linexpr.t =
  List.fold_left
    (fun e (v, c) ->
      let var =
        match v with
        | Ir.Loop i -> inst.ivars.(i)
        | Ir.Symc s -> sym_var t s
        | Ir.Opq id -> List.assoc id inst.opq_vals
      in
      Linexpr.add_term e (Zint.of_int c) var)
    (Linexpr.of_int a.Ir.const)
    a.Ir.terms

(* i in [A]: the loop bounds of the access's nest, plus the defining
   constraints of its opaque terms' arguments, plus (optionally) in-bounds
   assertions for its subscripts and index-array arguments. *)
let domain ?(in_bounds = false) t (inst : inst) : Constr.t list =
  let bounds =
    List.concat
      (List.mapi
         (fun d (loop : Ir.loop) ->
           let v = Linexpr.var inst.ivars.(d) in
           if loop.Ir.step = 1 then
             List.map (fun lo -> Constr.ge v (affine t inst lo)) loop.Ir.lo
             @ List.map (fun hi -> Constr.le v (affine t inst hi)) loop.Ir.hi
           else begin
             (* normalized counter of a stepped loop: v >= 0, and the
                surface value lo + step*v within the (single) limit *)
             let l = affine t inst (List.hd loop.Ir.lo) in
             let surface = Linexpr.add l (Linexpr.scale_int loop.Ir.step v) in
             Constr.ge v (Linexpr.of_int 0)
             :: List.map
                  (fun hi ->
                    let h = affine t inst hi in
                    if loop.Ir.step > 0 then Constr.le surface h
                    else Constr.ge surface h)
                  loop.Ir.hi
           end)
         inst.access.Ir.loops)
  in
  let opaque_defs =
    List.concat_map
      (fun (o : Ir.opaque) ->
        let args = List.assoc o.Ir.opq_id inst.opq_args in
        List.map2
          (fun var arg -> Constr.eq2 (Linexpr.var var) (affine t inst arg))
          args o.Ir.args)
      inst.access.Ir.opaques
  in
  let in_bounds_cs =
    if not in_bounds then []
    else begin
      (* subscripts of this access within the declared range *)
      let sub_bounds =
        match List.assoc_opt inst.access.Ir.array t.ranges with
        | Some ranges when List.length ranges = List.length inst.access.Ir.subs ->
          List.concat
            (List.map2
               (fun s (lo, hi) ->
                 let e = affine t inst s in
                 [ Constr.ge e lo; Constr.le e hi ])
               inst.access.Ir.subs ranges)
        | _ -> []
      in
      (* index-array values and arguments within their declared ranges *)
      let opq_bounds =
        List.concat_map
          (fun (o : Ir.opaque) ->
            match o.Ir.base with
            | Some base -> (
              match List.assoc_opt base t.ranges with
              | Some ranges when List.length ranges = List.length o.Ir.args ->
                let args = List.assoc o.Ir.opq_id inst.opq_args in
                List.concat
                  (List.map2
                     (fun var (lo, hi) ->
                       [
                         Constr.ge (Linexpr.var var) lo;
                         Constr.le (Linexpr.var var) hi;
                       ])
                     args ranges)
              | _ -> [])
            | None -> [])
          inst.access.Ir.opaques
      in
      sub_bounds @ opq_bounds
    end
  in
  bounds @ opaque_defs @ in_bounds_cs

(* A(i) and B(j) touch the same array element. *)
let subs_equal t (a : inst) (b : inst) : Constr.t list =
  assert (a.access.Ir.array = b.access.Ir.array);
  assert (List.length a.access.Ir.subs = List.length b.access.Ir.subs);
  List.map2
    (fun sa sb -> Constr.eq2 (affine t a sa) (affine t b sb))
    a.access.Ir.subs b.access.Ir.subs

(* User assumptions, as constraints over the symbolic constants. *)
let assumes t : Constr.t list =
  List.map
    (fun (c : Ir.sym_cond) ->
      let l = affine_syms t c.Ir.sc_left and r = affine_syms t c.Ir.sc_right in
      match c.Ir.sc_op with
      | Ast.Eq -> Constr.eq2 l r
      | Ast.Le -> Constr.le l r
      | Ast.Lt -> Constr.lt l r
      | Ast.Ge -> Constr.ge l r
      | Ast.Gt -> Constr.gt l r
      | Ast.Ne ->
        (* not expressible as one constraint; drop (conservative) *)
        Constr.geq (Linexpr.of_int 0))
    t.prog.Ir.assumes

(* ------------------------------------------------------------------ *)
(* Execution order                                                     *)
(* ------------------------------------------------------------------ *)

(* A(i) << B(j) as a disjunction of conjunctions, one per level:
   level l (1-based, l <= c): i_1 = j_1, ..., i_{l-1} = j_{l-1}, i_l < j_l;
   level c+1 (only when A is textually before B): all common equal.
   Returns the list of (carried-level, constraints); carried level c+1 is
   reported as 0 (loop-independent). *)
let order_before t (a : inst) (b : inst) : (int * Constr.t list) list =
  let c = Ir.common_loops a.access b.access in
  let eq_prefix l =
    List.init l (fun d ->
        Constr.eq2 (Linexpr.var a.ivars.(d)) (Linexpr.var b.ivars.(d)))
  in
  ignore t;
  let levels =
    List.init c (fun l ->
        ( l + 1,
          eq_prefix l
          @ [ Constr.lt (Linexpr.var a.ivars.(l)) (Linexpr.var b.ivars.(l)) ] ))
  in
  if Ir.textually_before a.access b.access then
    levels @ [ (0, eq_prefix c) ]
  else levels

(* Formula version of A(i) << B(j). *)
let order_before_formula t a b : Presburger.t =
  Presburger.or_
    (List.map
       (fun (_, cs) -> Presburger.and_ (List.map Presburger.atom cs))
       (order_before t a b))

(* Variables of an instantiation, for quantification. *)
let inst_vars (i : inst) : Var.t list =
  Array.to_list i.ivars
  @ List.map snd i.opq_vals
  @ List.concat_map snd i.opq_args

let sym_vars t = List.map snd t.syms
