lib/core/depctx.ml: Array Ast Constr Ir Linexpr List Omega Presburger Printf Var Zint
