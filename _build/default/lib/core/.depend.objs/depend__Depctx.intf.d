lib/core/depctx.mli: Constr Ir Linexpr Omega Presburger Var
