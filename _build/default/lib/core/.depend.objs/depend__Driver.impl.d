lib/core/driver.ml: Analyses Array Buffer Depctx Deps Dirvec Ir List Printf String
