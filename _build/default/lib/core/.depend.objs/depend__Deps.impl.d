lib/core/deps.ml: Array Constr Depctx Dirvec Elim Ir Linexpr List Omega Printf Problem String Var
