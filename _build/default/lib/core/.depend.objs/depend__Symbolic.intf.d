lib/core/symbolic.mli: Constr Depctx Dirvec Ir Omega Problem
