lib/core/dirvec.ml: Array Constr Elim Linexpr List Omega Printf Problem Stdlib String Var Zint
