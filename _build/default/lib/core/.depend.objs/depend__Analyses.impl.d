lib/core/analyses.ml: Array Constr Depctx Deps Dirvec Elim Gist Ir Lazy Linexpr List Omega Presburger Problem Var Zint
