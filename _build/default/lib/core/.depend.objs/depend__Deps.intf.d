lib/core/deps.mli: Constr Depctx Dirvec Ir Omega Problem Var
