lib/core/induction.mli: Ast Depctx Ir
