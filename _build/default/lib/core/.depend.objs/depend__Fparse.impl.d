lib/core/fparse.ml: Ast Constr Linexpr List Omega Parser Presburger Problem String Var
