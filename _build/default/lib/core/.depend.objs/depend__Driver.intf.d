lib/core/driver.mli: Depctx Deps Dirvec Ir
