lib/core/analyses.mli: Constr Depctx Dirvec Ir Omega Problem Var
