lib/core/symbolic.ml: Array Ast Constr Depctx Dirvec Elim Format Gist Ir Linexpr List Omega Presburger Printf Problem String Var Zint
