lib/core/induction.ml: Array Ast Constr Depctx Elim Ir Linexpr List Omega Option Problem Zint
