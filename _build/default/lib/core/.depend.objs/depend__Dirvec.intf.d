lib/core/dirvec.mli: Constr Omega Problem Var
