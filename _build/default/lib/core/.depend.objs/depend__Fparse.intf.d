lib/core/fparse.mli: Omega Presburger Problem Var
