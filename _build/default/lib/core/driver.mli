(** The overall section-4 procedure: classify every apparent flow
    dependence of a program as live or dead (killed / covered), with
    refinement and covering annotations - the data of Figures 3 and 4.

    Output dependences are computed first (they gate the kill and
    refinement tests); then, per array read: compute the apparent flow
    dependences, refine each, check covering; a loop-independent covering
    dependence eliminates dependences from writes that run completely
    before it without any Omega call; the rest are checked pairwise for
    killing, screened by the quick tests of section 4.5. *)

type dead_reason = Killed of Ir.access | Covered of Ir.access

type flow_result = {
  dep : Deps.dep;
  refined : Dirvec.t list option;
      (** refined vectors, when refinement changed them *)
  covers : bool;  (** does this dependence cover its read? *)
  dead : dead_reason option;
}

type result = {
  ctx : Depctx.t;
  flows : flow_result list;
  antis : Deps.dep list;
  outputs : Deps.dep list;
}

val analyze : ?in_bounds:bool -> ?quick:bool -> Ir.program -> result
(** [quick] (default true) enables the section 4.5 quick screens; turning
    it off runs every general test (exposed for the ablation bench). *)

val classify_kind :
  ?in_bounds:bool -> ?quick:bool -> Ir.program -> Deps.kind -> flow_result list
(** Live/dead classification of the given dependence kind.  [Flow] is
    {!analyze}'s pipeline; [Output]/[Anti] apply the pairwise kill test to
    storage dependences (an extension the paper describes but leaves
    unimplemented: an intervening write makes them transitive). *)

(** {1 Quick screens} (exposed for the benches) *)

val refinement_possible : Deps.dep list -> Ir.access -> bool
val cover_possible : Dirvec.t list -> bool
val output_exists : Deps.dep list -> Ir.access -> Ir.access -> bool

val cover_eliminates :
  cover_vectors:Dirvec.t list -> Ir.access -> Ir.access -> Ir.access -> bool
(** [cover_eliminates ~cover_vectors a b w]: can the covering dependence
    [a -> b] eliminate the dependence from write [w] to [b] without a
    kill test?  Requires the cover to be loop-independent, [w] textually
    before [a], and the loops [w] shares with [a] or [b] to be shared by
    [a] and [b]. *)

(** {1 Rendering} *)

val status_string : flow_result -> string
val vectors_string : flow_result -> string
val live_flows : result -> flow_result list
val dead_flows : result -> flow_result list

val render_flow_table : flow_result list -> string
(** The Figure 3 / Figure 4 table format. *)
