(* A small textual front end for Presburger formulas, used by omega_calc
   to demo the section 3.2 decision procedure:

     forall x: exists y: x = 2*y or x = 2*y + 1
     forall x: 0 <= x and x <= 10 => exists y: x = 2*y

   Grammar (lowest precedence first):

     formula := "forall" ids ":" formula
              | "exists" ids ":" formula
              | disj [ "=>" formula ]          (implication, right assoc)
     disj    := conj { "or" conj }
     conj    := chained comparisons separated by "and" (Lang.Parser)

   Variables are bound by name: a quantifier introduces (or shadows) the
   name; free names become fresh variables shared across the formula. *)

open Omega

exception Error of string

type env = { mutable table : (string * Var.t) list }

let lookup env name =
  match List.assoc_opt name env.table with
  | Some v -> v
  | None ->
    let v = Var.fresh name in
    env.table <- (name, v) :: env.table;
    v

let linexpr_of env (e : Ast.expr) : Linexpr.t =
  let rec go e =
    match e with
    | Ast.Int n -> Linexpr.of_int n
    | Ast.Name s -> Linexpr.var (lookup env s)
    | Ast.Neg a -> Linexpr.neg (go a)
    | Ast.Add (a, b) -> Linexpr.add (go a) (go b)
    | Ast.Sub (a, b) -> Linexpr.sub (go a) (go b)
    | Ast.Mul (a, b) -> (
      let ea = go a and eb = go b in
      if Linexpr.is_const ea then Linexpr.scale (Linexpr.constant ea) eb
      else if Linexpr.is_const eb then Linexpr.scale (Linexpr.constant eb) ea
      else raise (Error "non-linear product"))
    | Ast.Max _ | Ast.Min _ | Ast.Ref _ ->
      raise (Error "max/min/array references are not allowed in formulas")
  in
  go e

let atom_of env (c : Ast.cond) : Presburger.t =
  let l = linexpr_of env c.Ast.left and r = linexpr_of env c.Ast.right in
  match c.Ast.op with
  | Ast.Eq -> Presburger.eq l r
  | Ast.Le -> Presburger.le l r
  | Ast.Lt -> Presburger.lt l r
  | Ast.Ge -> Presburger.ge l r
  | Ast.Gt -> Presburger.gt l r
  | Ast.Ne ->
    Presburger.or_ [ Presburger.lt l r; Presburger.gt l r ]

(* Split [s] at the first top-level occurrence of the word [kw]
   (surrounded by spaces); no parentheses in this little language, so
   "top-level" is simply "first". *)
let split_word kw s =
  let pat = " " ^ kw ^ " " in
  let plen = String.length pat and n = String.length s in
  let rec find i =
    if i + plen > n then None
    else if String.sub s i plen = pat then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    Some
      ( String.trim (String.sub s 0 i),
        String.trim (String.sub s (i + plen) (n - i - plen)) )
  | None -> None

let starts_with_word w s =
  let wl = String.length w in
  String.length s > wl
  && String.sub s 0 wl = w
  && (s.[wl] = ' ' || s.[wl] = ':')

let rec parse env (s : string) : Presburger.t =
  let s = String.trim s in
  if starts_with_word "forall" s || starts_with_word "exists" s then begin
    let is_forall = starts_with_word "forall" s in
    let rest = String.sub s 6 (String.length s - 6) in
    match String.index_opt rest ':' with
    | None -> raise (Error "expected ':' after the quantified variables")
    | Some i ->
      let names =
        String.sub rest 0 i |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      if names = [] then raise (Error "quantifier with no variables");
      (* bind fresh variables, shadowing outer names *)
      let saved = env.table in
      let vars =
        List.map
          (fun n ->
            let v = Var.fresh n in
            env.table <- (n, v) :: env.table;
            v)
          names
      in
      let body =
        parse env (String.sub rest (i + 1) (String.length rest - i - 1))
      in
      env.table <- saved;
      if is_forall then Presburger.forall vars body
      else Presburger.exists vars body
  end
  else
    match split_word "=>" s with
    | Some (lhs, rhs) ->
      Presburger.implies_ (parse_disj env lhs) (parse env rhs)
    | None -> parse_disj env s

and parse_disj env s =
  let s = String.trim s in
  if starts_with_word "forall" s || starts_with_word "exists" s then
    (* a quantifier swallows the rest of the disjunct *)
    parse env s
  else
    match split_word "or" s with
    | Some (l, r) ->
      Presburger.or_ [ parse_conj env l; parse_disj env r ]
    | None -> parse_conj env s

and parse_conj env s =
  match Parser.parse_conds_string s with
  | conds -> Presburger.and_ (List.map (atom_of env) conds)
  | exception Parser.Error (msg, _) -> raise (Error msg)

(* Entry points. *)
let formula_of_string (s : string) : Presburger.t =
  parse { table = [] } s

let problem_of_string (s : string) : Problem.t * (string * Var.t) list =
  let env = { table = [] } in
  let conds =
    try Parser.parse_conds_string s
    with Parser.Error (msg, _) -> raise (Error msg)
  in
  let constr (c : Ast.cond) : Constr.t =
    let l = linexpr_of env c.Ast.left and r = linexpr_of env c.Ast.right in
    match c.Ast.op with
    | Ast.Eq -> Constr.eq2 l r
    | Ast.Le -> Constr.le l r
    | Ast.Lt -> Constr.lt l r
    | Ast.Ge -> Constr.ge l r
    | Ast.Gt -> Constr.gt l r
    | Ast.Ne -> raise (Error "!= is a disjunction; not allowed here")
  in
  (Problem.of_list (List.map constr conds), env.table)
