(* Arbitrary-precision integers with an unboxed fast path.

   Representation: [Small n] for values that fit a native [int]; [Big (neg,
   mag)] otherwise, where [mag] is a little-endian magnitude in base 2^30
   with no leading zero digit.  The invariant that [Big] is used only for
   values outside the native range keeps [equal]/[compare]/[hash] cheap and
   makes structural equality of [Small] values coincide with numeric
   equality. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t =
  | Small of int
  | Big of bool * int array (* neg, magnitude *)

let zero = Small 0
let one = Small 1
let minus_one = Small (-1)
let two = Small 2

(* ------------------------------------------------------------------ *)
(* Magnitude arithmetic (non-negative, little-endian, base 2^30).      *)
(* ------------------------------------------------------------------ *)

let mag_is_zero m = Array.length m = 0

let mag_trim m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do decr n done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  mag_trim r

(* Precondition: a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_trim r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land mask;
        carry := cur lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    mag_trim r
  end

let mag_bits m =
  let l = Array.length m in
  if l = 0 then 0
  else begin
    let b = ref 0 in
    let v = ref m.(l - 1) in
    while !v > 0 do incr b; v := !v lsr 1 done;
    ((l - 1) * base_bits) + !b
  end

let mag_bit m i =
  let d = i / base_bits and o = i mod base_bits in
  if d >= Array.length m then 0 else (m.(d) lsr o) land 1

(* Binary shift-subtract long division: O(bits * len).  Big numbers are rare
   in practice (they appear only when Fourier-Motzkin coefficient products
   escape the native range), so simplicity beats Knuth's algorithm D here. *)
let mag_divmod num den =
  if mag_is_zero den then raise Division_by_zero;
  if mag_compare num den < 0 then ([||], num)
  else begin
    let nbits = mag_bits num in
    let q = Array.make (Array.length num) 0 in
    let dlen = Array.length den in
    let rlen = dlen + 1 in
    let r = Array.make rlen 0 in
    (* r := r * 2 + bit; r stays < 2*den < base^rlen throughout *)
    let shift_in bit =
      let carry = ref bit in
      for i = 0 to rlen - 1 do
        let cur = (r.(i) lsl 1) lor !carry in
        r.(i) <- cur land mask;
        carry := cur lsr base_bits
      done;
      assert (!carry = 0)
    in
    let r_ge_den () =
      if r.(rlen - 1) <> 0 then true
      else
        let rec go i =
          if i < 0 then true
          else if r.(i) <> den.(i) then r.(i) > den.(i)
          else go (i - 1)
        in
        go (dlen - 1)
    in
    let r_sub_den () =
      let borrow = ref 0 in
      for i = 0 to rlen - 1 do
        let db = if i < dlen then den.(i) else 0 in
        let s = r.(i) - db - !borrow in
        if s < 0 then begin r.(i) <- s + base; borrow := 1 end
        else begin r.(i) <- s; borrow := 0 end
      done;
      assert (!borrow = 0)
    in
    for i = nbits - 1 downto 0 do
      shift_in (mag_bit num i);
      if r_ge_den () then begin
        r_sub_den ();
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_trim q, mag_trim r)
  end

(* ------------------------------------------------------------------ *)
(* Small <-> Big conversion                                            *)
(* ------------------------------------------------------------------ *)

(* Magnitude of a non-negative native int. *)
let mag_of_nonneg n =
  if n = 0 then [||]
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr base_bits) (acc + 1) in
    let l = count n 0 in
    let m = Array.make l 0 in
    let v = ref n in
    for i = 0 to l - 1 do
      m.(i) <- !v land mask;
      v := !v lsr base_bits
    done;
    m
  end

(* Magnitude of |n| for any native int, including min_int. *)
let mag_of_int_abs n =
  if n = min_int then mag_add (mag_of_nonneg max_int) [| 1 |]
  else mag_of_nonneg (abs n)

let mag_to_int m =
  let r = ref 0 in
  for i = Array.length m - 1 downto 0 do
    r := (!r lsl base_bits) lor m.(i)
  done;
  !r

let min_int_mag = mag_of_int_abs min_int

let norm isneg m =
  let m = mag_trim m in
  if mag_is_zero m then zero
  else if mag_bits m <= 62 then
    let v = mag_to_int m in
    Small (if isneg then -v else v)
  else if isneg && mag_compare m min_int_mag = 0 then Small min_int
  else Big (isneg, m)

let of_int n = Small n

let is_small = function Small _ -> true | Big _ -> false

let to_int_opt = function
  | Small n -> Some n
  | Big _ -> None (* by invariant, Big never fits *)

let to_int = function
  | Small n -> n
  | Big _ -> failwith "Zint.to_int: value does not fit in a native int"

let sign = function
  | Small n -> compare n 0
  | Big (isneg, _) -> if isneg then -1 else 1

let is_zero t = match t with Small 0 -> true | Small _ | Big _ -> false
let is_one t = match t with Small 1 -> true | Small _ | Big _ -> false

(* Decompose into (neg, magnitude). *)
let parts = function
  | Small n -> (n < 0, mag_of_int_abs n)
  | Big (isneg, m) -> (isneg, m)

let neg = function
  | Small n when n <> min_int -> Small (-n)
  | t ->
    let ng, m = parts t in
    if mag_is_zero m then zero else norm (not ng) m

let abs t = if sign t < 0 then neg t else t

let add a b =
  match a, b with
  | Small x, Small y ->
    let s = x + y in
    (* overflow iff operands share a sign that the result does not *)
    if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then begin
      let nx, mx = parts a and _, my = parts b in
      norm nx (mag_add mx my)
    end
    else Small s
  | _ ->
    let na, ma = parts a and nb, mb = parts b in
    if na = nb then norm na (mag_add ma mb)
    else begin
      let c = mag_compare ma mb in
      if c = 0 then zero
      else if c > 0 then norm na (mag_sub ma mb)
      else norm nb (mag_sub mb ma)
    end

let sub a b = add a (neg b)

(* |x|,|y| < 2^31 implies the product fits in 62 bits *)
let small_mul_ok x y =
  let ax = if x = min_int then max_int else Stdlib.abs x in
  let ay = if y = min_int then max_int else Stdlib.abs y in
  ax < 0x8000_0000 && ay < 0x8000_0000

let mul a b =
  match a, b with
  | Small 0, _ | _, Small 0 -> zero
  | Small 1, t | t, Small 1 -> t
  | Small x, Small y when small_mul_ok x y -> Small (x * y)
  | _ ->
    let na, ma = parts a and nb, mb = parts b in
    norm (na <> nb) (mag_mul ma mb)

let succ t = add t one
let pred t = sub t one

let compare a b =
  match a, b with
  | Small x, Small y -> compare x y
  | _ ->
    let sa = sign a and sb = sign b in
    if sa <> sb then compare sa sb
    else begin
      let _, ma = parts a and _, mb = parts b in
      let c = mag_compare ma mb in
      if sa >= 0 then c else -c
    end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash = function
  | Small n -> Hashtbl.hash n
  | Big (isneg, m) -> Hashtbl.hash (isneg, Array.to_list m)

(* Truncating division: quotient rounds toward zero; remainder has the sign
   of the dividend. *)
let tdivmod a b =
  if is_zero b then raise Division_by_zero;
  match a, b with
  | Small x, Small y when not (x = min_int && y = -1) ->
    (Small (x / y), Small (x mod y))
  | _ ->
    let na, ma = parts a and nb, mb = parts b in
    let q, r = mag_divmod ma mb in
    (norm (na <> nb) q, norm na r)

let tdiv a b = fst (tdivmod a b)
let trem a b = snd (tdivmod a b)

let fdiv a b =
  let q, r = tdivmod a b in
  if (not (is_zero r)) && sign r <> sign b then pred q else q

let frem a b =
  let r = trem a b in
  if (not (is_zero r)) && sign r <> sign b then add r b else r

let cdiv a b =
  let q, r = tdivmod a b in
  if (not (is_zero r)) && sign r = sign b then succ q else q

let divisible a b =
  if is_zero b then is_zero a else is_zero (trem a b)

let divexact a b =
  let q, r = tdivmod a b in
  assert (is_zero r);
  q

(* mod_hat a b = a - b * floor(a/b + 1/2), for b > 0: the representative of
   a mod b lying in (-b/2, b/2]. *)
let mod_hat a b =
  if is_zero b then raise Division_by_zero;
  let b = abs b in
  let r = frem a b in
  (* r in [0, b): map to (-b/2, b/2] *)
  if compare (mul two r) b > 0 then sub r b else r

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (trem a b)

let gcd a b = gcd_aux (abs a) (abs b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (divexact a (gcd a b)) b)

let to_string t =
  match t with
  | Small n -> string_of_int n
  | Big (isneg, _) ->
    let buf = Buffer.create 32 in
    (* repeated division by 10^9 *)
    let chunk = Small 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = tdivmod v chunk in
        go q (to_int r :: acc)
      end
    in
    let chunks = go (abs t) [] in
    (match chunks with
     | [] -> Buffer.add_char buf '0'
     | c :: rest ->
       if isneg then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int c);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Zint.of_string: empty string";
  let isneg = s.[0] = '-' in
  let start = if isneg || s.[0] = '+' then 1 else 0 in
  if start >= n then invalid_arg "Zint.of_string: no digits";
  let acc = ref zero in
  let ten = Small 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Zint.of_string: bad digit";
    acc := add (mul !acc ten) (Small (Char.code c - Char.code '0'))
  done;
  if isneg then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
