(** Arbitrary-precision signed integers.

    Fourier–Motzkin elimination multiplies constraint coefficients together,
    so coefficients can outgrow native integers even on small dependence
    problems.  The original Omega library used native [int]s and aborted on
    overflow; we instead promote transparently to a bignum representation.
    Values that fit in a native [int] are stored unboxed, so the common case
    pays only an overflow check. *)

type t

val zero : t
val one : t
val minus_one : t
val two : t

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
val of_string : string -> t
(** Accepts an optional leading [-] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t
val min : t -> t -> t
val max : t -> t -> t

val fdiv : t -> t -> t
(** Floor division: rounds toward negative infinity.
    @raise Division_by_zero *)

val cdiv : t -> t -> t
(** Ceiling division: rounds toward positive infinity.
    @raise Division_by_zero *)

val tdiv : t -> t -> t
(** Truncating division: rounds toward zero (like OCaml [/]).
    @raise Division_by_zero *)

val frem : t -> t -> t
(** Remainder of [fdiv]: [frem a b] has the sign of [b] (or is zero), and
    [add (mul (fdiv a b) b) (frem a b) = a]. *)

val trem : t -> t -> t
(** Remainder of [tdiv]: has the sign of the dividend (or is zero). *)

val divisible : t -> t -> bool
(** [divisible a b] iff [b] divides [a] exactly. [divisible a zero] iff
    [a = zero]. *)

val divexact : t -> t -> t
(** Division known to be exact; checked with an assertion. *)

val mod_hat : t -> t -> t
(** Pugh's symmetric residue: [mod_hat a b = a - b * floor(a/b + 1/2)] for
    [b > 0]; the result lies in [(-b/2, b/2]].  Used by exact equality
    elimination. @raise Division_by_zero *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val is_small : t -> bool
(** True when the value is stored in the unboxed native representation
    (exposed for tests of the promotion logic). *)
