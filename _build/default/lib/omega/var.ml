(* Variables of Omega problems.

   Three kinds, mirroring the roles in the paper:
   - [Input]: iteration variables and other named problem variables.
   - [Sym]: symbolic constants (loop-invariant scalars, the [Sym] set of the
     paper's notation table).
   - [Wild]: existentially quantified wildcards introduced by exact equality
     elimination and splintering; never visible to clients. *)

type kind = Input | Sym | Wild

type t = { id : int; name : string; kind : kind }

let counter = ref 0

let fresh ?(kind = Input) name =
  incr counter;
  { id = !counter; name; kind }

let fresh_wild () =
  incr counter;
  { id = !counter; name = Printf.sprintf "_w%d" !counter; kind = Wild }

let id t = t.id
let name t = t.name
let kind t = t.kind
let is_wild t = t.kind = Wild
let is_sym t = t.kind = Sym

let compare a b = compare a.id b.id
let equal a b = a.id = b.id
let hash t = t.id

let pp fmt t = Format.pp_print_string fmt t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
