(* Gist computation (section 3.3 of the paper).

   [gist p given q] is a conjunction of a minimal subset of the constraints
   of [p] such that [(gist p given q) && q == p && q]: the "new information"
   in [p] for someone who already knows [q].

   The naive algorithm tests, for each constraint [e] of [p], whether
   [not e && rest-of-p && q] is satisfiable; if not, [e] is implied by the
   rest and can be dropped.  The fast checks from the paper screen out most
   satisfiability tests:
   - a constraint implied by a single other constraint is redundant;
   - a constraint whose normal has a non-positive inner product with every
     other normal must be in the gist (nothing can combine to imply it). *)

(* Negation of one constraint as a disjunction of problems to be conjoined
   with a context.  Inert congruence equalities (an equality mentioning a
   wildcard [w] with coefficient [g]) negate into the g-1 other residues. *)
let negate_disjuncts (c : Constr.t) : Constr.t list =
  match Constr.kind c with
  | Constr.Geq -> [ Constr.negate_geq c ]
  | Constr.Eq -> (
    let e = Constr.expr c in
    let wild =
      Var.Set.choose_opt (Var.Set.filter Var.is_wild (Linexpr.vars e))
    in
    match wild with
    | None ->
      (* e = 0 negates to e <= -1 or e >= 1 *)
      [
        Constr.geq (Linexpr.add_const (Linexpr.neg e) Zint.minus_one);
        Constr.geq (Linexpr.add_const e Zint.minus_one);
      ]
    | Some w ->
      (* congruence g | rest: negation is the other residues, each again a
         congruence with a fresh wildcard *)
      let g = Zint.abs (Linexpr.coeff e w) in
      let rest = Linexpr.set_coeff e w Zint.zero in
      let rec residues r acc =
        if Zint.(r >= g) then acc
        else begin
          let sigma = Var.fresh_wild () in
          let expr =
            Linexpr.add_term (Linexpr.add_const rest (Zint.neg r)) g sigma
          in
          residues (Zint.succ r) (Constr.eq expr :: acc)
        end
      in
      residues Zint.one [])

(* Satisfiability of [ctx && not c]. *)
let sat_with_negation (ctx : Constr.t list) (c : Constr.t) =
  List.exists
    (fun nc -> Elim.satisfiable (Problem.of_list (nc :: ctx)))
    (negate_disjuncts c)

(* [implied_by_context ctx c]: is [c] implied by the conjunction [ctx]? *)
let implied_by_context ctx c = not (sat_with_negation ctx c)

(* Tautology test for [p => q] (section 3.3.1): every constraint of [q]
   must be implied by [p]. *)
let implies (p : Problem.t) (q : Problem.t) =
  match Problem.simplify p with
  | Problem.Contra -> true
  | Problem.Ok p ->
    let pcs = Problem.constraints p in
    List.for_all
      (fun c ->
        List.exists (fun c' -> Constr.implies c' c) pcs
        || implied_by_context pcs c)
      (Problem.constraints q)

(* Split an equality into its two component inequalities (the paper
   converts equalities in [p] to matched inequality pairs first, so the
   gist can retain just one side). *)
let split_equalities cs =
  List.concat_map
    (fun c ->
      match Constr.kind c with
      | Constr.Geq -> [ c ]
      | Constr.Eq ->
        let e = Constr.expr c in
        if Var.Set.exists Var.is_wild (Linexpr.vars e) then
          (* congruences are kept atomic *)
          [ c ]
        else
          [
            Constr.geq ~color:(Constr.color c) e;
            Constr.geq ~color:(Constr.color c) (Linexpr.neg e);
          ])
    cs

type result = Tautology | False | Gist of Problem.t

(* [gist p ~given:q].  [fast] enables the paper's screening checks
   (exposed so the ablation bench can compare). *)
let gist ?(fast = true) (p : Problem.t) ~given:(q : Problem.t) : result =
  match Problem.simplify q with
  | Problem.Contra -> Tautology (* anything is implied by False *)
  | Problem.Ok q -> (
    match Problem.simplify p with
    | Problem.Contra -> False
    | Problem.Ok p ->
      if not (Elim.satisfiable (Problem.conj p q)) then False
      else begin
        let qcs = Problem.constraints q in
        let pcs = split_equalities (Problem.constraints p) in
        (* fast check: drop p-constraints implied by a single constraint of
           q (safe: q is always in the context) *)
        let pcs =
          if fast then
            List.filter
              (fun c -> not (List.exists (fun qc -> Constr.implies qc c) qcs))
              pcs
          else pcs
        in
        (* fast check: a constraint with no positively-correlated companion
           (among all other constraints) cannot be implied by them *)
        let must_keep =
          if not fast then fun _ -> false
          else fun c ->
            let others =
              List.filter (fun c' -> c' != c) pcs @ qcs
            in
            not
              (List.exists
                 (fun c' ->
                   Zint.sign (Linexpr.dot (Constr.expr c) (Constr.expr c'))
                   > 0)
                 others)
        in
        let rec loop kept todo =
          match todo with
          | [] -> List.rev kept
          | c :: rest ->
            if must_keep c then loop (c :: kept) rest
            else begin
              let ctx = List.rev_append kept (rest @ qcs) in
              if sat_with_negation ctx c then loop (c :: kept) rest
              else loop kept rest
            end
        in
        match loop [] pcs with
        | [] -> Tautology
        | cs -> (
          match Problem.simplify (Problem.of_list cs) with
          | Problem.Contra -> False
          | Problem.Ok g -> if Problem.is_trivial g then Tautology else Gist g)
      end)

(* ------------------------------------------------------------------ *)
(* Combined projection + gist (section 3.3.2)                          *)
(* ------------------------------------------------------------------ *)

(* [gist_project ~keep p ~given:q] computes
   [gist (project ~keep (p && q)) ~given:(project ~keep q)]
   with a single joint elimination: [p]'s constraints are tagged red,
   [q]'s black; derived constraints are red iff a red parent (or a red
   equality driving a substitution) contributed.  After projection, black
   constraints are consequences of [q] alone, so the gist of the red part
   given the black part has exactly the defining property against the
   projections.  Falls back to two separate (dark-shadow) projections
   when the joint projection splinters. *)
let gist_project ~keep (p : Problem.t) ~(given : Problem.t) : result =
  let tag color pb =
    List.map (Constr.with_color color) (Problem.constraints pb)
  in
  let joint =
    Problem.of_list (tag Constr.Red p @ tag Constr.Black given)
  in
  let splintered = ref false in
  match Elim.project ~splintered ~keep joint with
  | [ projected ] when not !splintered ->
    let red, black =
      List.partition Constr.is_red (Problem.constraints projected)
    in
    gist (Problem.of_list red) ~given:(Problem.of_list black)
  | [] -> False
  | _ -> (
    (* splintered: conservative fallback via dark shadows *)
    let pq = Problem.conj p given in
    match Elim.project_dark ~keep pq, Elim.project_dark ~keep given with
    | `Contra, _ -> False
    | `Ok ppq, `Contra -> Gist ppq
    | `Ok ppq, `Ok pq_given -> gist ppq ~given:pq_given)
