(* Affine expressions: a constant plus a linear combination of variables
   with exact integer coefficients.  The term map never stores zero
   coefficients, so structural equality of the map coincides with equality
   of the linear part. *)

type t = { const : Zint.t; terms : Zint.t Var.Map.t }

let zero = { const = Zint.zero; terms = Var.Map.empty }
let const c = { const = c; terms = Var.Map.empty }
let of_int n = const (Zint.of_int n)

let term c v =
  if Zint.is_zero c then zero
  else { const = Zint.zero; terms = Var.Map.singleton v c }

let var v = term Zint.one v

let coeff e v =
  match Var.Map.find_opt v e.terms with Some c -> c | None -> Zint.zero

let constant e = e.const
let mem e v = Var.Map.mem v e.terms
let is_const e = Var.Map.is_empty e.terms

let set_coeff e v c =
  let terms =
    if Zint.is_zero c then Var.Map.remove v e.terms
    else Var.Map.add v c e.terms
  in
  { e with terms }

let add_term e c v = set_coeff e v (Zint.add (coeff e v) c)
let add_const e c = { e with const = Zint.add e.const c }

let add a b =
  let terms =
    Var.Map.union
      (fun _ c1 c2 ->
        let c = Zint.add c1 c2 in
        if Zint.is_zero c then None else Some c)
      a.terms b.terms
  in
  { const = Zint.add a.const b.const; terms }

let neg e =
  { const = Zint.neg e.const; terms = Var.Map.map Zint.neg e.terms }

let sub a b = add a (neg b)

let scale c e =
  if Zint.is_zero c then zero
  else if Zint.is_one c then e
  else { const = Zint.mul c e.const; terms = Var.Map.map (Zint.mul c) e.terms }

let scale_int n e = scale (Zint.of_int n) e

(* Substitute [v := def] in [e]. *)
let subst e v def =
  let c = coeff e v in
  if Zint.is_zero c then e
  else add (set_coeff e v Zint.zero) (scale c def)

let vars e = Var.Map.fold (fun v _ acc -> Var.Set.add v acc) e.terms Var.Set.empty

let iter_terms f e = Var.Map.iter f e.terms
let fold_terms f e acc = Var.Map.fold f e.terms acc
let num_terms e = Var.Map.cardinal e.terms

let exists_term p e = Var.Map.exists p e.terms

(* Gcd of the variable coefficients (not the constant); zero for a constant
   expression. *)
let content e =
  Var.Map.fold (fun _ c acc -> Zint.gcd (Zint.abs c) acc) e.terms Zint.zero

(* Divide all coefficients and the constant exactly by [d]. *)
let divexact e d =
  {
    const = Zint.divexact e.const d;
    terms = Var.Map.map (fun c -> Zint.divexact c d) e.terms;
  }

let map_coeffs f e =
  let terms =
    Var.Map.filter_map
      (fun _ c ->
        let c' = f c in
        if Zint.is_zero c' then None else Some c')
      e.terms
  in
  { const = f e.const; terms }

let eval env e =
  Var.Map.fold
    (fun v c acc -> Zint.add acc (Zint.mul c (env v)))
    e.terms e.const

(* Structural comparison, constant included. *)
let compare a b =
  let c = Zint.compare a.const b.const in
  if c <> 0 then c else Var.Map.compare Zint.compare a.terms b.terms

(* Comparison of the linear parts only (ignoring constants): used to detect
   parallel constraints. *)
let compare_terms a b = Var.Map.compare Zint.compare a.terms b.terms

let equal a b = compare a b = 0

(* Inner product of the coefficient vectors of two expressions, used by the
   gist fast checks ("normals with positive inner product"). *)
let dot a b =
  Var.Map.fold
    (fun v c acc ->
      match Var.Map.find_opt v b.terms with
      | Some c' -> Zint.add acc (Zint.mul c c')
      | None -> acc)
    a.terms Zint.zero

let pp fmt e =
  let open Format in
  if is_const e then Zint.pp fmt e.const
  else begin
    let first = ref true in
    Var.Map.iter
      (fun v c ->
        let s = Zint.sign c in
        if !first then begin
          first := false;
          if Zint.is_one c then pp_print_string fmt (Var.name v)
          else if Zint.equal c Zint.minus_one then fprintf fmt "-%s" (Var.name v)
          else fprintf fmt "%a%s" Zint.pp c (Var.name v)
        end
        else begin
          let a = Zint.abs c in
          fprintf fmt " %s " (if s >= 0 then "+" else "-");
          if Zint.is_one a then pp_print_string fmt (Var.name v)
          else fprintf fmt "%a%s" Zint.pp a (Var.name v)
        end)
      e.terms;
    if not (Zint.is_zero e.const) then
      if Zint.sign e.const > 0 then fprintf fmt " + %a" Zint.pp e.const
      else fprintf fmt " - %a" Zint.pp (Zint.abs e.const)
  end

let to_string e = Format.asprintf "%a" pp e
