(** Individual constraints: [expr = 0] or [expr >= 0].

    The [color] supports the paper's red/black scheme (section 3.3.2) for
    combined projection + gist: constraints from [p] are tagged [Red],
    constraints from [q] [Black], and derived constraints are red iff any
    parent is red. *)

type kind = Eq | Geq
type color = Black | Red

type t

val make : ?color:color -> kind -> Linexpr.t -> t
val eq : ?color:color -> Linexpr.t -> t
val geq : ?color:color -> Linexpr.t -> t

val ge : ?color:color -> Linexpr.t -> Linexpr.t -> t
(** [ge a b] is [a >= b]; similarly [le], [gt], [lt], and [eq2] for
    [a = b]. *)

val le : ?color:color -> Linexpr.t -> Linexpr.t -> t
val gt : ?color:color -> Linexpr.t -> Linexpr.t -> t
val lt : ?color:color -> Linexpr.t -> Linexpr.t -> t
val eq2 : ?color:color -> Linexpr.t -> Linexpr.t -> t

val kind : t -> kind
val expr : t -> Linexpr.t
val color : t -> color
val is_red : t -> bool
val with_color : color -> t -> t
val combine_colors : color -> color -> color

val negate_geq : t -> t
(** Negation of an inequality: [not (e >= 0)] is [-e - 1 >= 0].
    Equalities negate to a disjunction; see {!Presburger}. *)

type norm_result = Tauto | Contra | Ok of t

val normalize : t -> norm_result
(** Divide by the gcd of the coefficients; inequality constants are
    tightened with floor division (an integer-only strengthening); an
    equality whose constant is not divisible is a contradiction. *)

val subst : t -> Var.t -> Linexpr.t -> t
val vars : t -> Var.Set.t
val mentions : t -> Var.t -> bool
val eval : (Var.t -> Zint.t) -> t -> bool

val implies : t -> t -> bool
(** Single-constraint implication; detects only the parallel /
    anti-parallel cases (used as a fast screen). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
