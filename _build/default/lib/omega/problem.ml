(* A problem is a conjunction of constraints, the basic object the Omega
   test manipulates.

   Semantics: a problem denotes the set of assignments to its non-wildcard
   variables for which there exist integer values of the wildcard variables
   satisfying every constraint.  After simplification and elimination,
   wildcards appear only in "inert congruence" position: a wildcard [s]
   occurring in exactly one equality [e + g*s = 0], which denotes the
   congruence [e = 0 (mod g)]. *)

type t = { cs : Constr.t list }

type simplified = Contra | Ok of t

let trivial = { cs = [] }
let of_list cs = { cs }
let constraints t = t.cs
let is_trivial t = t.cs = []

let add c t = { cs = c :: t.cs }
let add_list cs t = { cs = cs @ t.cs }
let conj a b = { cs = a.cs @ b.cs }

let eqs t = List.filter (fun c -> Constr.kind c = Constr.Eq) t.cs
let geqs t = List.filter (fun c -> Constr.kind c = Constr.Geq) t.cs

let vars t =
  List.fold_left (fun acc c -> Var.Set.union acc (Constr.vars c)) Var.Set.empty t.cs

let map_constraints f t = { cs = List.map f t.cs }
let filter f t = { cs = List.filter f t.cs }
let exists f t = List.exists f t.cs
let for_all f t = List.for_all f t.cs

let subst v def t = { cs = List.map (fun c -> Constr.subst c v def) t.cs }

(* Substitution driven by an equality of the given color: constraints that
   actually mention the variable absorb that color (supports the red/black
   combined projection + gist of section 3.3.2). *)
let subst_colored v def color t =
  {
    cs =
      List.map
        (fun c ->
          if Constr.mentions c v then
            Constr.with_color
              (Constr.combine_colors color (Constr.color c))
              (Constr.subst c v def)
          else c)
        t.cs;
  }

(* Number of constraints mentioning [v]. *)
let occurrences t v =
  List.fold_left (fun n c -> if Constr.mentions c v then n + 1 else n) 0 t.cs

let eval env t = List.for_all (Constr.eval env) t.cs

(* ------------------------------------------------------------------ *)
(* Simplification                                                      *)
(* ------------------------------------------------------------------ *)

(* Key for grouping constraints with parallel linear parts.  Two exprs get
   the same key iff their linear parts are equal or opposite; [flipped]
   tells which. *)
module Termkey = struct
  type key = (Var.t * Zint.t) list (* sorted by var, leading coeff > 0 *)

  let canon (e : Linexpr.t) : key * bool =
    (* bool: true when the sign was flipped to make the leading coefficient
       positive *)
    let bindings = Linexpr.fold_terms (fun v c acc -> (v, c) :: acc) e [] in
    let bindings = List.sort (fun (a, _) (b, _) -> Var.compare a b) bindings in
    match bindings with
    | [] -> ([], false)
    | (_, c0) :: _ ->
      if Zint.sign c0 >= 0 then (bindings, false)
      else (List.map (fun (v, c) -> (v, Zint.neg c)) bindings, true)

  let compare_key (a : key) (b : key) =
    let cmp (va, ca) (vb, cb) =
      let c = Var.compare va vb in
      if c <> 0 then c else Zint.compare ca cb
    in
    List.compare cmp a b
end

module KeyMap = Map.Make (struct
  type t = Termkey.key

  let compare = Termkey.compare_key
end)

(* Merge the constraints sharing a linear direction:
   after canonicalization every constraint is [dir + c >= 0] (lower bound on
   -dir), [-dir + c >= 0] (upper bound), or [dir + c = 0].  We keep the
   tightest bounds, detect contradictions, and promote touching opposite
   inequalities to equalities. *)
type bucket = {
  (* smallest c with dir + c >= 0 *)
  mutable lo : (Zint.t * Constr.t) option;
  (* smallest c with -dir + c >= 0 *)
  mutable hi : (Zint.t * Constr.t) option;
  (* equality dir + c = 0 *)
  mutable eq : (Zint.t * Constr.t) option;
  mutable contra : bool;
}

let simplify (t : t) : simplified =
  let exception Bail in
  let buckets : bucket KeyMap.t ref = ref KeyMap.empty in
  let get_bucket key =
    match KeyMap.find_opt key !buckets with
    | Some b -> b
    | None ->
      let b = { lo = None; hi = None; eq = None; contra = false } in
      buckets := KeyMap.add key b !buckets;
      b
  in
  let consider c0 =
    match Constr.normalize c0 with
    | Constr.Tauto -> ()
    | Constr.Contra -> raise Bail
    | Constr.Ok c ->
      let e = Constr.expr c in
      let key, flipped = Termkey.canon e in
      let b = get_bucket key in
      let cst = Linexpr.constant e in
      (match Constr.kind c with
       | Constr.Eq ->
         (* normalize equality constant to the unflipped direction *)
         let cst = if flipped then Zint.neg cst else cst in
         (match b.eq with
          | Some (c', _) when not (Zint.equal c' cst) -> b.contra <- true
          | Some _ -> ()
          | None -> b.eq <- Some (cst, c))
       | Constr.Geq ->
         let slot_is_lo = not flipped in
         let update slot =
           match slot with
           | Some (c', _) when Zint.(cst < c') -> Some (cst, c)
           | None -> Some (cst, c)
           | some -> some
         in
         if slot_is_lo then b.lo <- update b.lo else b.hi <- update b.hi)
  in
  match List.iter consider t.cs with
  | exception Bail -> Contra
  | () ->
    let out = ref [] in
    let emit c = out := c :: !out in
    let check_bucket _key b =
      if b.contra then raise Bail;
      match b.eq with
      | Some (ceq, c) ->
        (* equality dir = -ceq; bounds dir >= -clo, dir <= chi must agree *)
        (match b.lo with
         | Some (clo, _) when Zint.(Zint.neg ceq < Zint.neg clo) -> raise Bail
         | _ -> ());
        (match b.hi with
         | Some (chi, _) when Zint.(Zint.neg ceq > chi) -> raise Bail
         | _ -> ());
        emit c
      | None ->
        (match b.lo, b.hi with
         | Some (clo, cl), Some (chi, ch) ->
           (* -clo <= dir <= chi *)
           if Zint.(chi < Zint.neg clo) then raise Bail
           else if Zint.equal chi (Zint.neg clo) then
             (* touching bounds: dir = chi, an equality *)
             emit
               (Constr.eq
                  ~color:(Constr.combine_colors (Constr.color cl) (Constr.color ch))
                  (Constr.expr cl))
           else begin
             emit cl;
             emit ch
           end
         | Some (_, cl), None -> emit cl
         | None, Some (_, ch) -> emit ch
         | None, None -> ())
    in
    (match KeyMap.iter check_bucket !buckets with
     | exception Bail -> Contra
     | () -> Ok { cs = List.rev !out })

let pp fmt t =
  let open Format in
  if t.cs = [] then pp_print_string fmt "TRUE"
  else begin
    pp_print_string fmt "{ ";
    let first = ref true in
    List.iter
      (fun c ->
        if not !first then pp_print_string fmt " && ";
        first := false;
        Constr.pp fmt c)
      t.cs;
    pp_print_string fmt " }"
  end

let to_string t = Format.asprintf "%a" pp t
