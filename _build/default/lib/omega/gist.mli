(** Gist computation and implication testing (section 3.3 of the paper).

    [gist p ~given:q] is a conjunction of a minimal subset of the
    constraints of [p] such that [(gist p given q) && q  ==  p && q]: the
    "new information" in [p] for someone who already knows [q]. *)

type result =
  | Tautology  (** [q] already implies [p]: the gist is [True]. *)
  | False  (** [p] and [q] are inconsistent. *)
  | Gist of Problem.t

val gist : ?fast:bool -> Problem.t -> given:Problem.t -> result
(** [fast] (default true) enables the paper's screening checks:
    single-constraint implications and the "no positively-correlated
    normal" must-keep test.  Disabling it falls back to the naive
    satisfiability-test-per-constraint algorithm (exposed for the
    ablation bench); both satisfy the defining property. *)

val implies : Problem.t -> Problem.t -> bool
(** [implies p q]: is [p => q] a tautology?  (Section 3.3.1: each
    constraint of [q] is checked against [p], with a parallel-constraint
    screen before the satisfiability test.) *)

(**/**)

val negate_disjuncts : Constr.t -> Constr.t list
(** The negation of one constraint as a list of alternatives (exposed for
    tests): an inequality negates to one inequality, an equality to two,
    an inert congruence to the other residues. *)

val gist_project :
  keep:(Var.t -> bool) -> Problem.t -> given:Problem.t -> result
(** [gist_project ~keep p ~given:q] is
    [gist (project ~keep (p && q)) ~given:(project ~keep q)] computed with
    a single red/black joint elimination (section 3.3.2), falling back to
    dark-shadow projections when the joint projection splinters. *)
