lib/omega/var.mli: Format Map Set
