lib/omega/problem.mli: Constr Format Linexpr Var Zint
