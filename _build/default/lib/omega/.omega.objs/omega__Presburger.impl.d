lib/omega/presburger.ml: Constr Elim Format Linexpr List Problem String Var Zint
