lib/omega/constr.ml: Format Linexpr Zint
