lib/omega/linexpr.mli: Format Var Zint
