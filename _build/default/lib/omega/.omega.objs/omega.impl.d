lib/omega/omega.ml: Constr Elim Gist Linexpr List Presburger Problem Var Zint
