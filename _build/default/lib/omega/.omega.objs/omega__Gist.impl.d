lib/omega/gist.ml: Constr Elim Linexpr List Problem Var Zint
