lib/omega/gist.mli: Constr Problem Var
