lib/omega/elim.ml: Constr Linexpr List Option Problem Var Zint
