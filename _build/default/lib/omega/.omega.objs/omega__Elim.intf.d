lib/omega/elim.mli: Problem Var
