lib/omega/presburger.mli: Constr Format Linexpr Problem Var Zint
