lib/omega/problem.ml: Constr Format Linexpr List Map Var Zint
