lib/omega/linexpr.ml: Format Var Zint
