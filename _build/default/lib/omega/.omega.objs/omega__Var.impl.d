lib/omega/var.ml: Format Map Printf Set
