lib/omega/constr.mli: Format Linexpr Var Zint
