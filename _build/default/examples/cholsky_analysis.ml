(* Reproduces Figures 3 and 4 of the paper: the live and dead flow
   dependences of CHOLSKY (a NASA NAS benchmark kernel, Figure 2).

   Of the 35 apparent flow dependences, 14 carry no data at all: they are
   killed ([k]) or covered ([c]) by intervening writes.  Almost all other
   dependence analyzers would report all 35 as true dependences. *)

open Depend

let () =
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "cholsky") in
  let t0 = Unix.gettimeofday () in
  let result = Driver.analyze prog in
  let dt = Unix.gettimeofday () -. t0 in
  let live = Driver.live_flows result in
  let dead = Driver.dead_flows result in
  Format.printf "Figure 3: live flow dependences for CHOLSKY (%d)@.%s@."
    (List.length live)
    (Driver.render_flow_table live);
  Format.printf "Figure 4: dead flow dependences for CHOLSKY (%d)@.%s@."
    (List.length dead)
    (Driver.render_flow_table dead);
  Format.printf
    "[C] covers its read; [r] refined; [k] killed; [c] covered.@.";
  Format.printf "analysis time: %.1f ms (all %d accesses)@." (dt *. 1000.)
    (Lang.Ir.access_count prog)
