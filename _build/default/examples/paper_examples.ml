(* Examples 1-6 from the paper (section 4): kills, covers, and the
   refinement of dependence distance vectors, including the trapezoidal
   (ex. 4), partial (ex. 5) and coupled (ex. 6) cases that the prior
   approaches of Brandes and Ribas could not handle. *)

open Depend

let expected =
  [
    ("example1", "flow dep A->C killed by the intervening write B");
    ("example2", "read covered by a(L2-1); cover refined (0+) -> (0)");
    ("example3", "flow dependence refined (0+,1) -> (0,1)");
    ("example4", "trapezoidal loop still refines to (0,1)");
    ("example5", "refinement generator stops; (0:1,1) verifiable directly");
    ("example6", "coupled distances refine to (1,1)");
  ]

let () =
  List.iter
    (fun (name, note) ->
      Format.printf "=== %s: %s ===@." name note;
      print_string (Corpus.find name);
      let prog = Lang.Sema.parse_and_analyze (Corpus.find name) in
      let result = Driver.analyze prog in
      Format.printf "live flow dependences:@.%s"
        (Driver.render_flow_table (Driver.live_flows result));
      let dead = Driver.dead_flows result in
      if dead <> [] then
        Format.printf "dead flow dependences:@.%s"
          (Driver.render_flow_table dead);
      Format.printf "@.")
    expected;

  (* Example 5's partial refinement, checked with the general test the
     paper describes (its candidate generator cannot find it). *)
  Format.printf "=== example5: direct check of the (0:1,1) refinement ===@.";
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example5") in
  let ctx = Depctx.create prog in
  let w = List.hd (Lang.Ir.writes prog) in
  let r = List.hd (Lang.Ir.reads prog) in
  Format.printf "refine to (0:1, 1): %b (paper: valid)@."
    (Analyses.check_refinement ctx ~src:w ~dst:r
       [ (Some 0, Some 1); (Some 1, Some 1) ]);
  Format.printf "refine to (0, 1):   %b (paper: invalid, iterations with 1 < L1 = L2 flow from (L1-1, L2-1))@."
    (Analyses.check_refinement ctx ~src:w ~dst:r
       [ (Some 0, Some 0); (Some 1, Some 1) ])
