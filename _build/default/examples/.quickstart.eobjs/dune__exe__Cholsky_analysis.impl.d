examples/cholsky_analysis.ml: Corpus Depend Driver Format Lang List Unix
