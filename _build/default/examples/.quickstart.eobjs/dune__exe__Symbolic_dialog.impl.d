examples/symbolic_dialog.ml: Corpus Depctx Depend Dirvec Format Induction Lang List Omega Symbolic
