examples/quickstart.ml: Constr Depend Elim Format Gist Lang Linexpr List Omega Presburger Problem Var Zint
