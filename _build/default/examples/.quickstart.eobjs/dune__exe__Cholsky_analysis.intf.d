examples/cholsky_analysis.mli:
