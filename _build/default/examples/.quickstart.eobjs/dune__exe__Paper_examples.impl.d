examples/paper_examples.ml: Analyses Corpus Depctx Depend Driver Format Lang List
