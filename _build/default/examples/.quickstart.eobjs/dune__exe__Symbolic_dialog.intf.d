examples/symbolic_dialog.mli:
