examples/quickstart.mli:
