(* Quickstart: a tour of the public API.

   1. Build and solve integer constraint problems with the Omega test.
   2. Project, compute gists, decide Presburger formulas.
   3. Parse a small loop program and analyze its dependences. *)

open Omega

let section title = Format.printf "@.== %s ==@." title

let () =
  section "1. Integer programming with the Omega test";
  let x = Var.fresh "x" and y = Var.fresh "y" in
  let i n = Linexpr.of_int n in
  let vx = Linexpr.var x and vy = Linexpr.var y in
  (* 7x + 12y = 1 with x, y >= 0 has no integer solutions *)
  let p =
    Problem.of_list
      [
        Constr.eq2
          (Linexpr.add (Linexpr.scale_int 7 vx) (Linexpr.scale_int 12 vy))
          (i 1);
        Constr.ge vx (i 0);
        Constr.ge vy (i 0);
      ]
  in
  Format.printf "problem: %a@." Problem.pp p;
  Format.printf "satisfiable: %b@." (Elim.satisfiable p);

  section "2. Projection (the paper's example)";
  (* projecting {0 <= a <= 5; b < a <= 5b} onto a gives {2 <= a <= 5} *)
  let a = Var.fresh "a" and b = Var.fresh "b" in
  let va = Linexpr.var a and vb = Linexpr.var b in
  let q =
    Problem.of_list
      [
        Constr.ge va (i 0);
        Constr.le va (i 5);
        Constr.lt vb va;
        Constr.le va (Linexpr.scale_int 5 vb);
      ]
  in
  List.iter
    (fun piece -> Format.printf "projection piece: %a@." Problem.pp piece)
    (Omega.project ~keep:(Var.equal a) q);

  section "3. Gists: what is new in p, given q";
  let p3 = Problem.of_list [ Constr.ge vx (i 0); Constr.le vx (i 5) ] in
  let q3 = Problem.of_list [ Constr.ge vx (i 3) ] in
  (match Omega.gist p3 ~given:q3 with
   | Gist.Gist g -> Format.printf "gist: %a@." Problem.pp g
   | Gist.Tautology -> Format.printf "gist: TRUE@."
   | Gist.False -> Format.printf "gist: FALSE@.");

  section "4. Presburger formulas";
  let open Presburger in
  (* every integer in [0,10] is even or odd *)
  let f =
    forall [ x ]
      (implies_
         (and_ [ ge vx (i 0); le vx (i 10) ])
         (exists [ y ]
            (or_
               [
                 eq vx (Linexpr.scale_int 2 vy);
                 eq vx (Linexpr.add_const (Linexpr.scale_int 2 vy) Zint.one);
               ])))
  in
  Format.printf "valid (parity cover): %b@." (valid f);

  section "5. Dependence analysis of a loop program";
  let src =
    {|
symbolic n, m;
real a[-1000:1000];
for L1 := 1 to n do
  for L2 := 2 to m do
    s: a(L2) := a(L2-1);
  endfor
endfor
|}
  in
  print_string src;
  let prog = Lang.Sema.parse_and_analyze src in
  let result = Depend.Driver.analyze prog in
  Format.printf "live flow dependences:@.%s"
    (Depend.Driver.render_flow_table (Depend.Driver.live_flows result));
  Format.printf
    "(the dependence is refined from (0+,1) to (0,1): only the previous@.\
    \ iteration of the inner loop supplies the value)@."
