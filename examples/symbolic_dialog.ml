(* Section 5: symbolic dependence analysis.

   Example 7: the conditions on loop-invariant scalars under which each
   restrained dependence exists, computed as a gist against what is
   already known (so the question put to the user is concise).

   Example 8: index arrays.  Each appearance of Q[...] becomes a fresh
   symbolic variable; the analysis produces exactly the paper's queries,
   and user assertions (injectivity, monotonicity) rule dependences out. *)

open Depend

let () =
  Format.printf "=== Example 7 ===@.";
  print_string (Corpus.find "example7");
  Format.printf "with the user assertion 50 <= n <= 100:@.@.";
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example7") in
  let ctx = Depctx.create prog in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  let r = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
  List.iter
    (fun (name, restraint) ->
      let an = Symbolic.analyze ctx ~src:w ~dst:r ~restraint ~hide:[ "n" ] () in
      Format.printf "restraint vector %s -- dependence exists iff:@." name;
      (match an.Symbolic.cond with
       | Symbolic.Always -> Format.printf "  (always)@."
       | Symbolic.Never -> Format.printf "  (never)@."
       | Symbolic.When g -> Format.printf "  %a@." Omega.Problem.pp g
       | Symbolic.Unknown r ->
         Format.printf "  (gave up: %s)@." (Omega.Budget.reason_to_string r));
      Format.printf "  (paper: %s)@.@."
        (if name = "(+,*)" then "{1 <= x <= 50}" else "{x = 0 and y < m}"))
    [ ("(+,*)", [ Dirvec.Pos; Dirvec.Any ]); ("(0,+)", [ Dirvec.Zero; Dirvec.Pos ]) ];

  Format.printf "=== Example 8 ===@.";
  print_string (Corpus.find "example8");
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example8") in
  let ctx = Depctx.create prog in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  let rd =
    List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog)
  in
  Format.printf "@.checking for an output dependence generates the query:@.";
  let an = Symbolic.analyze ctx ~src:w ~dst:w ~restraint:[ Dirvec.Pos ] () in
  Format.printf "%s@.@." (Symbolic.render_query an);
  Format.printf "checking for a flow dependence generates the query:@.";
  let an = Symbolic.analyze ctx ~src:w ~dst:rd ~restraint:[ Dirvec.Pos ] () in
  Format.printf "%s@.@." (Symbolic.render_query an);
  Format.printf "if the user asserts properties of q instead:@.";
  List.iter
    (fun (label, props) ->
      Format.printf "  output dependence with %-24s: %b@." label
        (Symbolic.dependence_exists_with ctx ~src:w ~dst:w ~props))
    [
      ("no assertion", []);
      ("q injective (a permutation)", [ ("q", Symbolic.Injective) ]);
      ("q strictly increasing", [ ("q", Symbolic.Strictly_increasing) ]);
    ];

  Format.printf "@.=== Example 11 (s141 of the LCD91 study) ===@.";
  print_string (Corpus.find "example11");
  Format.printf
    "@.the scalar k accumulates a provably-positive increment; induction@.recognition feeds that fact to the analysis:@.@.";
  let prog = Lang.Sema.parse_and_analyze (Corpus.find "example11") in
  let ctx = Depctx.create prog in
  let accs = Induction.detect ctx in
  List.iter
    (fun (a : Induction.accumulator) ->
      Format.printf "detected accumulator: %s (increment at statement %s)@."
        a.Induction.scalar a.Induction.increment.Lang.Ir.label)
    accs;
  let props =
    List.map
      (fun (a : Induction.accumulator) ->
        (a.Induction.scalar, Symbolic.Accumulator a.Induction.increment))
      accs
  in
  let w = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.writes prog) in
  let r = List.find (fun a -> a.Lang.Ir.array = "a") (Lang.Ir.reads prog) in
  List.iter
    (fun (label, src, dst, props) ->
      Format.printf "  %-42s: %b@." label
        (Symbolic.dependence_exists_with ctx ~src ~dst ~props))
    [
      ("self output dep on a(k), no facts", w, w, []);
      ("self output dep on a(k), with induction", w, w, props);
      ("carried flow dep on a(k), with induction", w, r, props);
    ];
  Format.printf
    "(the paper: s141 could not be handled by any compiler tested in LCD91)@."

