(* The transformation layer end to end on one program: build the
   dependence graph, decide doall legality per loop under the standard
   and the extended analysis, print the annotated program, and confirm
   the claims against the interpreter.

   The program is the temporary-array pattern from section 1 of the
   paper: every iteration of [i] rewrites t(1..m) before reading it, so
   the carried dependences on [t] are storage reuse only.  The standard
   analysis must run [i] serially; the extended analysis kills the
   carried flow, refines the rest, and privatizing [t] makes [i] a
   doall.

   The demo then actually runs both plans over a domain pool
   (Xform.Exec) and checks each final state against serial execution:
   the std plan gets one parallel region per [i] iteration (the inner
   loops), the ext plan a single region over the whole [i] loop. *)

let src =
  {|
symbolic n, m;
real t[0:300], a[0:300,0:300], x[0:300,0:300];
for i := 1 to n do
  for j := 1 to m do
    w: t(j) := a(i,j);
  endfor
  for j := 1 to m do
    r: x(i,j) := t(j);
  endfor
endfor
|}

let () =
  let prog = Lang.Sema.parse_and_analyze src in
  let g = Xform.Graph.build prog in
  let vs = Xform.Parallel.analyze g in
  print_string (Xform.Parallel.render_report vs);
  print_newline ();
  print_string (Xform.Emit.annotate g vs);
  print_newline ();
  (match Xform.Oracle.check g vs with
  | Xform.Oracle.Report r ->
    Printf.printf "oracle: %d claim(s), %d violation(s) over %d events\n"
      r.Xform.Oracle.o_checked
      (List.length r.Xform.Oracle.o_violations)
      r.Xform.Oracle.o_events
  | Xform.Oracle.No_assignment -> print_endline "oracle: no assignment"
  | Xform.Oracle.Not_executable m ->
    Printf.printf "oracle: not executable (%s)\n" m);
  print_newline ();
  let syms = [ ("n", 40); ("m", 40) ] in
  let init _ idx = List.fold_left (fun h i -> (h * 31) + i + 17) 7 idx in
  let serial = Xform.Exec.run_serial ~init prog ~syms in
  Xform.Exec.with_pool ~size:4 (fun pool ->
      List.iter
        (fun (label, side) ->
          let pl = Xform.Exec.plan side vs in
          let mem, stats =
            Xform.Exec.run_parallel ~pool ~init pl prog ~syms
          in
          Printf.printf
            "%s: %d doall loop(s) -> %d parallel region(s), %d chunk(s) on \
             %d domains; final state %s\n"
            label
            (Xform.Exec.doall_count pl)
            stats.Xform.Exec.x_regions stats.Xform.Exec.x_chunks
            stats.Xform.Exec.x_domains
            (if Xform.Exec.equal_mem serial mem then "identical to serial"
             else "DIFFERS"))
        [ ("std plan", Xform.Exec.Std); ("ext plan", Xform.Exec.Ext) ]);
  print_newline ();
  print_string (Xform.Graph.to_dot g)
