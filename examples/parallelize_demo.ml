(* The transformation layer end to end on one program: build the
   dependence graph, decide doall legality per loop under the standard
   and the extended analysis, print the annotated program, and confirm
   the claims against the interpreter.

   The program is the temporary-array pattern from section 1 of the
   paper: every iteration of [i] rewrites t(1..m) before reading it, so
   the carried dependences on [t] are storage reuse only.  The standard
   analysis must run [i] serially; the extended analysis kills the
   carried flow, refines the rest, and privatizing [t] makes [i] a
   doall. *)

let src =
  {|
symbolic n, m;
real t[0:300], a[0:300,0:300], x[0:300,0:300];
for i := 1 to n do
  for j := 1 to m do
    w: t(j) := a(i,j);
  endfor
  for j := 1 to m do
    r: x(i,j) := t(j);
  endfor
endfor
|}

let () =
  let prog = Lang.Sema.parse_and_analyze src in
  let g = Xform.Graph.build prog in
  let vs = Xform.Parallel.analyze g in
  print_string (Xform.Parallel.render_report vs);
  print_newline ();
  print_string (Xform.Emit.annotate g vs);
  print_newline ();
  (match Xform.Oracle.check g vs with
  | Xform.Oracle.Report r ->
    Printf.printf "oracle: %d claim(s), %d violation(s) over %d events\n"
      r.Xform.Oracle.o_checked
      (List.length r.Xform.Oracle.o_violations)
      r.Xform.Oracle.o_events
  | Xform.Oracle.No_assignment -> print_endline "oracle: no assignment"
  | Xform.Oracle.Not_executable m ->
    Printf.printf "oracle: not executable (%s)\n" m);
  print_newline ();
  print_string (Xform.Graph.to_dot g)
